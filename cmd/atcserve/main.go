// Command atcserve is an HTTP daemon serving random-access reads over
// compressed address traces — the serving tier the chunk-index decoder
// and the archive store's O(1) blob lookup were built for. Each trace
// (a directory, a single-file .atc archive, an archive loaded into
// memory with -mem, or an http(s) URL of an archive in object storage)
// is registered under its base name and served through a pool of
// pre-opened Readers, so concurrent range requests never share decoder
// state while sharing one open store — and, by default, one shared chunk
// cache — per trace.
//
// Usage:
//
//	atcserve [-addr :8405] [-readers 4] [-mem] [-remote <url>] <trace>...
//
// Remote traces (-remote, or http(s):// positional arguments) are read
// over HTTP Range requests through a block cache (-remote-block,
// -remote-blocks) without ever downloading the archive: atcserve is then
// a stateless tier in front of object storage — any instance can serve
// any trace, and instances can scale horizontally with no local state
// beyond warm caches.
//
// Endpoints:
//
//	GET /traces                          JSON list of the served traces
//	GET /traces/{name}/meta              JSON metadata (?index=1 adds the
//	                                     chunk index)
//	GET /traces/{name}/addrs?from=&to=   the addresses at trace positions
//	                                     [from, to): raw 64-bit
//	                                     little-endian values by default
//	                                     (the bin2atc/atc2bin wire format),
//	                                     or JSON with ?format=json; add
//	                                     ?trace=1 for per-stage decode
//	                                     timings (an ATC-Trace header, and
//	                                     an embedded trace object in JSON).
//	                                     Binary responses honor HTTP Range
//	                                     headers (bytes of the wire format,
//	                                     single range): 206 with
//	                                     Content-Range, decoding only the
//	                                     covering address sub-window
//
// Every trace decodes through one process-wide chunk cache with a byte
// budget (-cache-bytes, default 256 MiB of decoded addresses): hot chunks
// stay resident across traces under one memory cap instead of a per-trace
// chunk count. -cache-bytes 0 falls back to the legacy per-trace
// count-bounded cache (-shared-cache). Per-trace metric series are capped
// at -metric-traces names; later traces aggregate under trace="other".
//
// With -debug-addr set, a second listener serves operational diagnostics:
// /metrics (Prometheus text format), /debug/obs (JSON metrics dump) and
// /debug/pprof. Requests are logged structurally (log/slog) with request
// id, trace, range, status, duration and chunks touched.
//
// Responses carry HTTP cache validators: /addrs payloads are immutable
// (ETag + Cache-Control: public, max-age, so CDNs absorb repeat traffic),
// /meta and /traces revalidate on every use (Cache-Control: no-cache).
// When every pooled reader stays busy past -max-wait the request is
// refused with 429 and a Retry-After, keeping overload visible instead of
// queueing without bound.
//
// Example session:
//
//	tracegen -model 429.mcf -n 1000000 | bin2atc -archive -lossless mcf.atc
//	atcserve mcf.atc &
//	curl localhost:8405/traces/mcf/meta
//	curl "localhost:8405/traces/mcf/addrs?from=500000&to=500100&format=json"
//
//	# the same archive served straight from object storage:
//	atcserve -remote https://bucket.example.com/traces/mcf.atc
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"path"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"atc"
	"atc/internal/obs"
	"atc/internal/store"
	"atc/internal/trace"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// logger is the process-wide structured logger; main reconfigures it from
// flags before any output. Package scope so helpers shared with tests
// (writeDecodeError) can log without threading a logger through.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

func main() {
	addr := flag.String("addr", ":8405", "listen address")
	debugAddr := flag.String("debug-addr", "", "diagnostics listen address serving /metrics, /debug/obs and /debug/pprof (disabled when empty)")
	readers := flag.Int("readers", 4, "pooled readers per trace (max concurrent range decodes)")
	cache := flag.Int("cache", 0, "private decompressed-chunk cache size per reader (default 8; only used when -cache-bytes and -shared-cache are 0)")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "process-wide chunk cache budget in decoded bytes, shared by every trace (0 falls back to -shared-cache)")
	sharedCache := flag.Int("shared-cache", 64, "per-trace chunk cache shared by all pooled readers, in chunks; only used when -cache-bytes is 0 (0 reverts to private per-reader caches)")
	metricTraces := flag.Int("metric-traces", 100, "per-trace labeled metric series cap: counters for traces beyond it collapse into trace=\"other\"")
	mem := flag.Bool("mem", false, "load .atc archives fully into memory and serve from RAM")
	maxRange := flag.Int64("max-range", 16<<20, "largest [from, to) window served per request, in addresses")
	maxWait := flag.Duration("max-wait", 2*time.Second, "longest a request waits for a pooled reader before 429")
	var remotes multiFlag
	flag.Var(&remotes, "remote", "serve a remote .atc archive by URL over HTTP Range reads (repeatable)")
	remoteBlock := flag.Int("remote-block", store.DefaultRemoteBlockSize, "remote fetch granularity, bytes per ranged GET")
	remoteBlocks := flag.Int("remote-blocks", store.DefaultRemoteCacheBlocks, "remote block cache size per trace, in blocks")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: atcserve [flags] <directory | file.atc | http(s)://...>...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	sources := append(flag.Args(), remotes...)
	if len(sources) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	cfg := poolConfig{
		mem:         *mem,
		readers:     *readers,
		cache:       *cache,
		sharedCache: *sharedCache,
		remote:      store.RemoteOptions{BlockSize: *remoteBlock, CacheBlocks: *remoteBlocks},
		reg:         obs.Default(),
		registrar:   newTraceRegistrar(obs.Default(), *metricTraces),
	}
	if *cacheBytes > 0 {
		cfg.sharedBytes = atc.NewSharedChunkCacheBytes(*cacheBytes)
		cfg.sharedBytes.Register(obs.Default())
	}
	srv := &server{
		pools:    map[string]*tracePool{},
		maxRange: *maxRange,
		maxWait:  *maxWait,
		log:      logger,
		met:      newServeMetrics(obs.Default()),
	}
	for _, path := range sources {
		name := traceName(path)
		if _, dup := srv.pools[name]; dup {
			fatal("duplicate trace name", "name", name, "source", path)
		}
		pool, err := openTrace(name, path, cfg)
		if err != nil {
			fatal("open trace", "source", path, "err", err)
		}
		srv.pools[name] = pool
		logger.Info("serving trace", "name", name, "mode", pool.meta.Mode,
			"addrs", pool.meta.TotalAddrs, "records", pool.meta.Records, "source", path)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr)
	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{Addr: *debugAddr, Handler: debugHandler()}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener", "err", err)
			}
		}()
		logger.Info("debug listening", "addr", *debugAddr)
	}
	select {
	case err := <-errc:
		fatal("serve", "err", err)
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, drain in-flight requests (10s
	// deadline), then release every pooled reader and its backing store.
	// The drain outcome is logged either way: how many in-flight requests
	// completed, and — when the deadline expires — how many were aborted.
	inFlightStart := srv.inFlight.Load()
	logger.Info("shutting down", "inFlight", inFlightStart)
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := httpSrv.Shutdown(shutCtx)
	aborted := srv.inFlight.Load()
	drained := inFlightStart - aborted
	if err != nil {
		logger.Warn("shutdown deadline expired", "drained", drained, "aborted", aborted, "err", err)
	} else {
		logger.Info("shutdown complete", "drained", drained, "served", srv.reqSeq.Load())
	}
	if debugSrv != nil {
		debugSrv.Close()
	}
	for _, pool := range srv.pools {
		pool.close()
	}
}

// debugHandler wires the diagnostics mux: Prometheus metrics, the obs
// JSON dump, and net/http/pprof (registered explicitly — the debug
// listener serves its own mux, not DefaultServeMux).
func debugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", obs.Default().Handler())
	mux.Handle("GET /debug/obs", obs.Default().DebugHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// traceName derives the registration name from a path or URL: the base
// name, with a .atc extension stripped.
func traceName(p string) string {
	name := filepath.Base(filepath.Clean(p))
	if store.IsRemoteURL(p) {
		if u, err := url.Parse(p); err == nil {
			name = path.Base(u.Path)
		}
	}
	return strings.TrimSuffix(name, ".atc")
}

// traceMeta is the JSON shape of GET /traces/{name}/meta.
type traceMeta struct {
	Name          string  `json:"name"`
	Mode          string  `json:"mode"`
	FormatVersion int     `json:"formatVersion"`
	TotalAddrs    int64   `json:"totalAddrs"`
	Records       int     `json:"records"`
	Chunks        int     `json:"chunks"`
	IntervalLen   int     `json:"intervalLen,omitempty"`
	SegmentAddrs  int     `json:"segmentAddrs,omitempty"`
	Epsilon       float64 `json:"epsilon,omitempty"`
	// ChunkReads counts chunk-blob decompressions across the trace's
	// pooled readers since startup (chunk-cache hits do not count) — the
	// serving tier's cache-effectiveness observable: requests served
	// from pooled readers' chunk caches leave it unchanged. With the
	// shared chunk cache on (the default), it counts each hot chunk once
	// per process, not once per reader.
	ChunkReads int64 `json:"chunkReads"`
	// SharedCacheHits/SharedCacheLoads report the trace's shared chunk
	// cache traffic — its view of the byte-budgeted process cache, or the
	// legacy count-bounded per-trace cache (absent when both are off).
	// SharedCacheBytes is the trace's resident decoded bytes in the
	// byte-budgeted cache (absent for the count-bounded kind).
	SharedCacheHits  int64 `json:"sharedCacheHits,omitempty"`
	SharedCacheLoads int64 `json:"sharedCacheLoads,omitempty"`
	SharedCacheBytes int64 `json:"sharedCacheBytes,omitempty"`
	// RemoteFetches/RemoteBytes report the remote block reader's origin
	// traffic for -remote traces (absent for local ones).
	RemoteFetches int64 `json:"remoteFetches,omitempty"`
	RemoteBytes   int64 `json:"remoteBytes,omitempty"`
}

// indexEntry is the JSON shape of one chunk-index span (?index=1).
type indexEntry struct {
	Start     int64 `json:"start"`
	End       int64 `json:"end"`
	ChunkID   int   `json:"chunkId"`
	Imitation bool  `json:"imitation,omitempty"`
}

// tracePool serves one trace: a shared open store plus a fixed pool of
// Readers. A request borrows a Reader for the duration of its decode, so
// at most cap(readers) range decodes run concurrently per trace and no
// decoder state is ever shared between requests.
type tracePool struct {
	name    string
	meta    traceMeta
	index   []atc.ChunkSpan
	st      atc.Store
	readers chan *atc.Reader
	// all references every pooled reader for metrics: Reader.ChunkReads
	// is an atomic counter, safe to sum while a reader is borrowed.
	all []*atc.Reader
	// shared is the trace's legacy count-bounded cross-reader chunk cache
	// (-shared-cache, only when -cache-bytes is 0); sharedBytes the
	// trace's view of the process-wide byte-budgeted cache (-cache-bytes,
	// the default); remote the backing remote store (nil for local
	// traces). All feed live counters into metaNow.
	shared      *atc.SharedChunkCache
	sharedBytes *atc.TraceChunkCache
	remote      *store.RemoteStore
	// etag is the trace's strong HTTP validator, derived from the
	// immutable decode identity (name, mode, totals, chunk index) at open;
	// etagHex is the same digest unquoted, for composing per-range
	// validators.
	etag, etagHex string
}

// chunkReads sums chunk-blob decompressions across the pool's readers.
func (p *tracePool) chunkReads() int64 {
	var n int64
	for _, r := range p.all {
		n += r.ChunkReads()
	}
	return n
}

// poolConfig carries per-trace pool tuning from flags to openTrace.
type poolConfig struct {
	mem     bool
	readers int
	// cache sizes the private per-reader chunk cache (addresses the
	// historical -cache flag); it only applies when sharedCache is 0.
	cache int
	// sharedCache sizes the per-trace chunk cache shared by every pooled
	// reader, in chunks; 0 disables sharing. Ignored when sharedBytes is
	// set.
	sharedCache int
	// sharedBytes, when set, is the process-wide byte-budgeted chunk
	// cache every trace shares (-cache-bytes): each pool decodes through
	// its ForTrace view, so one memory cap covers all pooled readers of
	// all traces.
	sharedBytes *atc.SharedChunkCacheBytes
	remote      store.RemoteOptions
	// reg, when set, receives per-trace labeled func metrics (chunk reads,
	// shared-cache and remote counters) at open. Nil in tests that build
	// pools directly.
	reg *obs.Registry
	// registrar, when set, routes that registration through the
	// per-trace cardinality cap (-metric-traces) instead of registering
	// each pool's own series unconditionally.
	registrar *traceRegistrar
}

// openTrace opens the store once (directory, archive, archive bytes in
// RAM, or a remote archive URL) and pre-opens the pooled readers against
// it, failing fast on a trace that does not decode. With sharedCache > 0
// every reader decodes through one SharedChunkCache, so a hot chunk
// decompresses once per process rather than once per reader.
func openTrace(name, path string, cfg poolConfig) (*tracePool, error) {
	n := cfg.readers
	if n < 1 {
		n = 1
	}
	var st atc.Store
	var remote *store.RemoteStore
	switch {
	case store.IsRemoteURL(path):
		if cfg.mem {
			return nil, fmt.Errorf("-mem applies to local archives only (remote traces already read on demand)")
		}
		rst, err := store.OpenRemote(path, cfg.remote)
		if err != nil {
			return nil, err
		}
		st, remote = rst, rst
	default:
		fi, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		switch {
		case fi.IsDir():
			if cfg.mem {
				return nil, fmt.Errorf("-mem serves single-file archives, not directories (pack %s with atcpack first)", path)
			}
			st = store.OpenDir(path)
		case cfg.mem:
			data, err := os.ReadFile(path)
			if err != nil {
				return nil, err
			}
			ast, err := store.OpenArchiveReaderAt(bytes.NewReader(data), int64(len(data)))
			if err != nil {
				return nil, err
			}
			st = ast
		default:
			ast, err := store.OpenArchive(path)
			if err != nil {
				return nil, err
			}
			st = ast
		}
	}
	p := &tracePool{name: name, st: st, remote: remote, readers: make(chan *atc.Reader, n)}
	readerOpts := []atc.ReadOption{
		// Readahead is disabled: a range server decodes exactly the chunks
		// a request asks for, and prefetch past the window would be waste.
		atc.WithReadStore(st), atc.WithReadahead(-1), atc.WithChunkCache(cfg.cache),
	}
	switch {
	case cfg.sharedBytes != nil:
		p.sharedBytes = cfg.sharedBytes.ForTrace(name)
		readerOpts = append(readerOpts, atc.WithSharedChunkCache(p.sharedBytes))
	case cfg.sharedCache > 0:
		p.shared = atc.NewSharedChunkCache(cfg.sharedCache)
		readerOpts = append(readerOpts, atc.WithSharedChunkCache(p.shared))
	}
	for i := 0; i < n; i++ {
		r, err := atc.NewReader(path, readerOpts...)
		if err != nil {
			p.close()
			return nil, err
		}
		p.all = append(p.all, r)
		p.readers <- r
	}
	r := <-p.readers
	p.index = r.ChunkIndex()
	chunks := map[int]bool{}
	for _, sp := range p.index {
		chunks[sp.ChunkID] = true
	}
	p.meta = traceMeta{
		Name:          name,
		Mode:          r.Mode().String(),
		FormatVersion: r.FormatVersion(),
		TotalAddrs:    r.TotalAddrs(),
		Records:       r.Records(),
		Chunks:        len(chunks),
		SegmentAddrs:  r.SegmentAddrs(),
	}
	if r.Mode() == atc.Lossy {
		p.meta.IntervalLen = r.IntervalLen()
		p.meta.Epsilon = r.Epsilon()
	}
	p.etagHex = traceETagHex(p.meta, p.index)
	p.etag = `"` + p.etagHex + `"`
	p.readers <- r
	if cfg.registrar != nil {
		cfg.registrar.add(p)
	} else if cfg.reg != nil {
		p.register(cfg.reg)
	}
	return p, nil
}

// poolCacheStats unifies the two shared-cache kinds (count-bounded
// per-trace, byte-budgeted process-wide view) for /meta and metrics; ok
// is false with private per-reader caches only.
type poolCacheStats struct {
	hits, loads, evictions       int64
	residentBytes, residentChunk int64
	ok                           bool
}

func (p *tracePool) cacheStats() poolCacheStats {
	switch {
	case p.sharedBytes != nil:
		st := p.sharedBytes.Stats()
		return poolCacheStats{st.Hits, st.Loads, st.Evictions, st.ResidentBytes, st.ResidentChunks, true}
	case p.shared != nil:
		st := p.shared.Stats()
		return poolCacheStats{st.Hits, st.Loads, st.Evictions, 0, int64(st.Resident), true}
	}
	return poolCacheStats{}
}

// register exposes the pool's live counters as per-trace labeled func
// metrics: thin views over the same atomics /meta reports, so the two
// surfaces can never disagree.
func (p *tracePool) register(reg *obs.Registry) {
	registerPoolMetrics(reg, p.name, []*tracePool{p})
}

// registerPoolMetrics exposes the summed live counters of pools under a
// trace=label series set. With a single pool under its own name this is
// the ordinary per-trace registration; the cardinality-capped overflow
// re-registers a growing pool list under trace="other" (func-metric
// registration is last-wins, so each re-registration swaps in closures
// over the larger set).
func registerPoolMetrics(reg *obs.Registry, label string, pools []*tracePool) {
	pools = append([]*tracePool(nil), pools...) // closures must not alias a caller slice that keeps growing
	lbl := obs.Label{Key: "trace", Value: label}
	sum := func(f func(*tracePool) int64) func() int64 {
		return func() int64 {
			var n int64
			for _, p := range pools {
				n += f(p)
			}
			return n
		}
	}
	reg.CounterFunc("atc_trace_chunk_reads_total",
		"chunk-blob decompressions across the trace's pooled readers",
		sum((*tracePool).chunkReads), lbl)
	anyCache, anyBytes, anyRemote := false, false, false
	for _, p := range pools {
		anyCache = anyCache || p.shared != nil || p.sharedBytes != nil
		anyBytes = anyBytes || p.sharedBytes != nil
		anyRemote = anyRemote || p.remote != nil
	}
	if anyCache {
		reg.CounterFunc("atc_chunk_cache_hits_total",
			"chunk lookups served from the shared cache or deduplicated onto an in-flight load",
			sum(func(p *tracePool) int64 { return p.cacheStats().hits }), lbl)
		reg.CounterFunc("atc_chunk_cache_loads_total",
			"chunk decompressions through the shared cache (misses)",
			sum(func(p *tracePool) int64 { return p.cacheStats().loads }), lbl)
		reg.CounterFunc("atc_chunk_cache_evictions_total",
			"chunks evicted from the shared cache",
			sum(func(p *tracePool) int64 { return p.cacheStats().evictions }), lbl)
		reg.GaugeFunc("atc_chunk_cache_resident_chunks",
			"chunks currently resident in the shared cache",
			sum(func(p *tracePool) int64 { return p.cacheStats().residentChunk }), lbl)
	}
	if anyBytes {
		reg.GaugeFunc("atc_chunk_cache_resident_bytes",
			"decoded bytes this trace holds in the process-wide byte-budgeted cache",
			sum(func(p *tracePool) int64 { return p.cacheStats().residentBytes }), lbl)
	}
	if anyRemote {
		reg.CounterFunc("atc_trace_remote_fetches_total",
			"ranged GETs issued for this trace's remote archive",
			sum(func(p *tracePool) int64 {
				if p.remote == nil {
					return 0
				}
				return p.remote.ReaderStats().Fetches
			}), lbl)
		reg.CounterFunc("atc_trace_remote_fetch_bytes_total",
			"payload bytes fetched for this trace's remote archive",
			sum(func(p *tracePool) int64 {
				if p.remote == nil {
					return 0
				}
				return p.remote.ReaderStats().BytesFetched
			}), lbl)
	}
}

// traceRegistrar applies the per-trace metric cardinality cap
// (-metric-traces): the first cap pools each get their own trace="name"
// series, and every later pool's counters collapse into one summed
// trace="other" series set — a replica serving thousands of traces keeps
// a bounded scrape size instead of an unboundedly growing registry.
type traceRegistrar struct {
	reg   *obs.Registry
	cap   int
	named int
	other []*tracePool
}

func newTraceRegistrar(reg *obs.Registry, cap int) *traceRegistrar {
	if cap < 0 {
		cap = 0
	}
	return &traceRegistrar{reg: reg, cap: cap}
}

// add registers one pool's metrics, under its own name while the cap
// allows and into the shared overflow series after. Pools register
// serially at startup; add is not safe for concurrent use.
func (t *traceRegistrar) add(p *tracePool) {
	if t.named < t.cap {
		t.named++
		registerPoolMetrics(t.reg, p.name, []*tracePool{p})
		return
	}
	t.other = append(t.other, p)
	registerPoolMetrics(t.reg, "other", t.other)
}

// traceETagHex digests the trace's immutable decode identity — name,
// mode/format metadata, totals and the full chunk index — into a strong
// HTTP validator. Live counters (chunkReads, cache stats) are deliberately
// excluded: the validator must name the payload bytes a range request
// yields, and those depend only on this identity.
func traceETagHex(meta traceMeta, index []atc.ChunkSpan) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d|%d|%d|%d|%d|%g",
		meta.Name, meta.Mode, meta.FormatVersion, meta.TotalAddrs,
		meta.Records, meta.Chunks, meta.SegmentAddrs, meta.IntervalLen, meta.Epsilon)
	for _, sp := range index {
		fmt.Fprintf(h, "|%d:%d:%d:%t", sp.Start, sp.End, sp.ChunkID, sp.Imitation)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// etagMatches reports whether an If-None-Match header names etag: any
// member of its comma-separated list, with weak W/ prefixes ignored for
// the GET-revalidation comparison, or the wildcard.
func etagMatches(header, etag string) bool {
	for _, c := range strings.Split(header, ",") {
		c = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c), "W/"))
		if c == etag || c == "*" {
			return true
		}
	}
	return false
}

// errBusy reports reader-pool admission failure: every pooled reader
// stayed busy past the bounded wait.
var errBusy = errors.New("every pooled reader is busy")

// acquire borrows a pooled reader. Rather than queueing without bound, a
// request waits at most maxWait for a reader to free up and then fails
// with errBusy (surfaced as 429 + Retry-After): under sustained overload
// the queue stays short and clients get backpressure they can act on.
func (p *tracePool) acquire(ctx context.Context, maxWait time.Duration) (*atc.Reader, error) {
	select {
	case r := <-p.readers:
		return r, nil
	default:
	}
	if maxWait <= 0 {
		return nil, errBusy
	}
	t := time.NewTimer(maxWait)
	defer t.Stop()
	select {
	case r := <-p.readers:
		return r, nil
	case <-t.C:
		return nil, errBusy
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (p *tracePool) release(r *atc.Reader) { p.readers <- r }

// close drains and closes every pooled reader, then the shared store.
func (p *tracePool) close() {
	for {
		select {
		case r := <-p.readers:
			r.Close()
		default:
			p.st.Close()
			return
		}
	}
}

// server routes trace requests to pools.
type server struct {
	pools    map[string]*tracePool
	maxRange int64
	maxWait  time.Duration
	// log and met are defaulted lazily by handler() so tests building a
	// bare &server{pools: ...} literal keep working.
	log *slog.Logger
	met *serveMetrics
	// reqSeq numbers requests for log correlation; inFlight counts
	// requests between middleware entry and exit, read by the shutdown
	// path to report drained vs aborted work.
	reqSeq   atomic.Int64
	inFlight atomic.Int64
}

// serveMetrics is the HTTP tier's registry slice: per-route counters by
// status class, per-route latency histograms, admission gauges and the
// cache/backpressure outcome counters. Every series is pre-registered so
// the hot path only ever touches atomics.
type serveMetrics struct {
	requests map[string][6]*obs.Counter // route -> status class 0..5 (1xx..5xx; 0 = other)
	latency  map[string]*obs.Histogram
	inFlight *obs.Gauge
	waiting  *obs.Gauge
	poolWait *obs.Histogram
	notMod   *obs.Counter
	throttle *obs.Counter
}

// serveRoutes are the metric label values for the three endpoints.
var serveRoutes = []string{"list", "meta", "addrs"}

func newServeMetrics(reg *obs.Registry) *serveMetrics {
	m := &serveMetrics{
		requests: map[string][6]*obs.Counter{},
		latency:  map[string]*obs.Histogram{},
		inFlight: reg.Gauge("atc_http_in_flight_requests", "requests currently being served"),
		waiting:  reg.Gauge("atc_http_pool_waiting_requests", "requests currently waiting for a pooled reader"),
		poolWait: reg.Histogram("atc_http_pool_wait_seconds",
			"time spent acquiring a pooled reader (including immediate grants)", obs.DurationBuckets),
		notMod: reg.Counter("atc_http_not_modified_total",
			"conditional requests answered 304 from a matching validator"),
		throttle: reg.Counter("atc_http_throttled_total",
			"requests refused 429 because every pooled reader stayed busy past -max-wait"),
	}
	for _, route := range serveRoutes {
		var byClass [6]*obs.Counter
		for class := range byClass {
			cls := "other"
			if class > 0 {
				cls = strconv.Itoa(class) + "xx"
			}
			byClass[class] = reg.Counter("atc_http_requests_total", "HTTP requests served by route and status class",
				obs.Label{Key: "route", Value: route}, obs.Label{Key: "class", Value: cls})
		}
		m.requests[route] = byClass
		m.latency[route] = reg.Histogram("atc_http_request_seconds",
			"HTTP request latency by route", obs.DurationBuckets,
			obs.Label{Key: "route", Value: route})
	}
	return m
}

// statusWriter captures the status code and body size a handler produced.
// An unset status means the handler wrote the body directly: 200.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// reqStats is per-request context the /addrs handler fills in for the
// request log line: the decode window, pool-wait time, and the decode
// trace whose chunk counters the log reports.
type reqStats struct {
	trace    string
	from, to int64
	ranged   bool
	wait     time.Duration
	dec      *obs.Trace
}

type reqStatsKey struct{}

// statsFrom returns the request's reqStats, installed by instrument.
func statsFrom(r *http.Request) *reqStats {
	rs, _ := r.Context().Value(reqStatsKey{}).(*reqStats)
	return rs
}

// instrument wraps a route handler with the serving tier's observability:
// request counting by status class, latency histograms, the in-flight
// gauge, and one structured log line per request.
func (s *server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := s.reqSeq.Add(1)
		s.inFlight.Add(1)
		s.met.inFlight.Inc()
		start := time.Now()
		rs := &reqStats{}
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(context.WithValue(r.Context(), reqStatsKey{}, rs)))
		dur := time.Since(start)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		class := 0
		if status >= 100 && status < 600 {
			class = status / 100
		}
		s.met.requests[route][class].Inc()
		s.met.latency[route].ObserveDuration(dur)
		if status == http.StatusNotModified {
			s.met.notMod.Inc()
		}
		s.met.inFlight.Dec()
		s.inFlight.Add(-1)

		args := []any{
			"id", id, "route", route, "status", status,
			"dur", dur.Round(time.Microsecond), "bytes", sw.bytes,
		}
		if rs.trace != "" {
			args = append(args, "trace", rs.trace)
		}
		if rs.ranged {
			args = append(args, "from", rs.from, "to", rs.to, "wait", rs.wait.Round(time.Microsecond))
		}
		if rs.dec != nil {
			args = append(args, "chunks", rs.dec.ChunkLoads(), "cacheHits", rs.dec.CacheHits())
		}
		s.log.Info("request", args...)
	}
}

// HTTP caching contract. A served trace is immutable for the life of the
// process — its decode identity is digested into a strong ETag at open —
// so the endpoints split cleanly:
//
//   - /traces/{name}/addrs: the payload for a given (trace, from, to,
//     format) never changes. Responses carry a per-range strong ETag and
//     "Cache-Control: public, max-age=31536000, immutable", so browsers
//     and CDNs in front of a stateless atcserve tier absorb repeat range
//     traffic entirely; If-None-Match revalidations answer 304 without
//     touching the reader pool.
//   - /traces/{name}/meta and /traces: the body embeds live counters
//     (chunkReads, cache and remote-fetch stats), so responses are
//     "Cache-Control: no-cache" — cacheable but revalidated on every
//     use. /meta's ETag deliberately covers only the immutable identity,
//     not the counters: a 304 may serve slightly stale counters, which is
//     the documented trade for cheap revalidation of the part consumers
//     key decisions off (the trace identity). Counter-polling clients
//     should send no validator.
//
// If a trace is ever re-registered with different content, its ETag
// changes with the identity digest, invalidating every cached range.
const addrsCacheControl = "public, max-age=31536000, immutable"

func (s *server) handler() http.Handler {
	// Lazy defaults keep test servers built as bare struct literals valid.
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	if s.met == nil {
		s.met = newServeMetrics(obs.Default())
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /traces", s.instrument("list", s.handleList))
	mux.HandleFunc("GET /traces/{name}/meta", s.instrument("meta", s.handleMeta))
	mux.HandleFunc("GET /traces/{name}/addrs", s.instrument("addrs", s.handleAddrs))
	return mux
}

func (s *server) pool(w http.ResponseWriter, r *http.Request) *tracePool {
	p, ok := s.pools[r.PathValue("name")]
	if !ok {
		http.Error(w, "unknown trace", http.StatusNotFound)
		return nil
	}
	return p
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// metaNow snapshots the pool's static metadata plus its live counters.
func (p *tracePool) metaNow() traceMeta {
	m := p.meta
	m.ChunkReads = p.chunkReads()
	if cs := p.cacheStats(); cs.ok {
		m.SharedCacheHits, m.SharedCacheLoads = cs.hits, cs.loads
		m.SharedCacheBytes = cs.residentBytes
	}
	if p.remote != nil {
		st := p.remote.ReaderStats()
		m.RemoteFetches, m.RemoteBytes = st.Fetches, st.BytesFetched
	}
	return m
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	metas := make([]traceMeta, 0, len(s.pools))
	for _, p := range s.pools {
		metas = append(metas, p.metaNow())
	}
	// Live counters in the body: revalidate on every use (see the caching
	// contract above addrsCacheControl).
	w.Header().Set("Cache-Control", "no-cache")
	writeJSON(w, map[string]any{"traces": metas})
}

func (s *server) handleMeta(w http.ResponseWriter, r *http.Request) {
	p := s.pool(w, r)
	if p == nil {
		return
	}
	// no-cache with an identity-only ETag: see the caching contract above
	// addrsCacheControl for why counters are excluded from the validator.
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Etag", p.etag)
	if etagMatches(r.Header.Get("If-None-Match"), p.etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if v := r.URL.Query().Get("index"); v == "" || v == "0" || v == "false" {
		writeJSON(w, p.metaNow())
		return
	}
	index := make([]indexEntry, len(p.index))
	for i, sp := range p.index {
		index[i] = indexEntry{Start: sp.Start, End: sp.End, ChunkID: sp.ChunkID, Imitation: sp.Imitation}
	}
	writeJSON(w, map[string]any{"meta": p.metaNow(), "index": index})
}

// parseAddr reads one query parameter as a trace position, with a default
// for the empty string.
func parseAddr(q, def string) (int64, error) {
	if q == "" {
		q = def
	}
	return strconv.ParseInt(q, 10, 64)
}

// writeDecodeError maps a DecodeRange failure to an HTTP status by error
// class. Corruption in the stored trace means the request was fine but the
// server's backing data is not: 502 Bad Gateway plus an operator log line,
// never a client-error status. An out-of-range window gets the same 416 as
// the pre-decode bounds check (reachable when a trace is swapped under a
// cached total). Everything else stays 500.
func writeDecodeError(w http.ResponseWriter, name string, err error) {
	switch {
	case errors.Is(err, atc.ErrCorrupt):
		logger.Error("corrupt trace", "trace", name, "err", err)
		http.Error(w, "corrupt trace: "+err.Error(), http.StatusBadGateway)
	case errors.Is(err, atc.ErrOutOfRange):
		http.Error(w, err.Error(), http.StatusRequestedRangeNotSatisfiable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// wantTrace reports whether the request opted into per-stage decode
// timing, via the ?trace=1 query parameter or an ATC-Trace header.
func wantTrace(r *http.Request) bool {
	if v := r.URL.Query().Get("trace"); v != "" && v != "0" && v != "false" {
		return true
	}
	return r.Header.Get("Atc-Trace") != ""
}

func (s *server) handleAddrs(w http.ResponseWriter, r *http.Request) {
	p := s.pool(w, r)
	if p == nil {
		return
	}
	rs := statsFrom(r)
	rs.trace = p.name
	total := p.meta.TotalAddrs
	from, err := parseAddr(r.URL.Query().Get("from"), "0")
	if err != nil {
		http.Error(w, "bad from: "+err.Error(), http.StatusBadRequest)
		return
	}
	to, err := parseAddr(r.URL.Query().Get("to"), strconv.FormatInt(total, 10))
	if err != nil {
		http.Error(w, "bad to: "+err.Error(), http.StatusBadRequest)
		return
	}
	rs.from, rs.to, rs.ranged = from, to, true
	if from < 0 || to < from || to > total {
		http.Error(w, fmt.Sprintf("range [%d, %d) outside trace [0, %d)", from, to, total),
			http.StatusRequestedRangeNotSatisfiable)
		return
	}
	if to-from > s.maxRange {
		http.Error(w, fmt.Sprintf("window of %d addresses exceeds the per-request limit %d",
			to-from, s.maxRange), http.StatusRequestEntityTooLarge)
		return
	}
	format := r.URL.Query().Get("format")
	traced := wantTrace(r)
	// The payload for (trace, from, to, format) is immutable: a matching
	// validator answers 304 before a pooled reader is even acquired. A
	// traced response is diagnostic, not the immutable payload — its
	// timings differ on every decode — so it skips the validator short-cut
	// and carries no cache headers at all.
	etag := fmt.Sprintf(`"%s-%d-%d-%s"`, p.etagHex, from, to, format)
	if !traced && etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.Header().Set("Etag", etag)
		w.Header().Set("Cache-Control", addrsCacheControl)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	// The binary payload is a byte-addressable immutable representation,
	// so it honors inbound HTTP ranges: bytes of the wire format (8 per
	// address), one range per request. A byte range maps to the smallest
	// covering address sub-window — only those addresses decode — and a
	// byteWindowWriter trims the odd leading/trailing bytes when the range
	// does not fall on an address boundary. JSON and traced responses are
	// not byte-addressable payloads and ignore Range per RFC 9110.
	byteLen := (to - from) * 8
	var rng byteRange
	partial := false
	if format != "json" && !traced {
		w.Header().Set("Accept-Ranges", "bytes")
		var err error
		rng, partial, err = parseByteRange(r.Header.Get("Range"), byteLen)
		if err != nil {
			w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", byteLen))
			http.Error(w, "unsatisfiable byte range: "+err.Error(), http.StatusRequestedRangeNotSatisfiable)
			return
		}
		// If-Range: serve the partial only against the exact current
		// validator; anything else gets the full representation.
		if partial && !ifRangeAllows(r.Header.Get("If-Range"), etag) {
			partial = false
		}
	}
	// Admission: the wait for a pooled reader is itself a decode stage —
	// a saturated pool shows up in the trace, not just in the 429 counter.
	tr := &obs.Trace{}
	rs.dec = tr
	waitStart := time.Now()
	s.met.waiting.Inc()
	rd, err := p.acquire(r.Context(), s.maxWait)
	s.met.waiting.Dec()
	rs.wait = time.Since(waitStart)
	tr.AddNS(obs.StageWait, rs.wait.Nanoseconds())
	s.met.poolWait.ObserveDuration(rs.wait)
	if err != nil {
		if errors.Is(err, errBusy) {
			s.met.throttle.Inc()
			w.Header().Set("Retry-After", "1")
			http.Error(w, "every pooled reader is busy; retry shortly", http.StatusTooManyRequests)
			return
		}
		http.Error(w, "busy: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	// The per-request recorder rides the borrowed reader for the decode
	// and must be detached before the reader returns to the pool.
	rd.SetDecodeTrace(tr)
	defer func() {
		rd.SetDecodeTrace(nil)
		p.release(rd)
	}()
	w.Header().Set("X-Atc-From", strconv.FormatInt(from, 10))
	w.Header().Set("X-Atc-To", strconv.FormatInt(to, 10))
	w.Header().Set("X-Atc-Count", strconv.FormatInt(to-from, 10))
	if format == "json" {
		addrs, err := rd.DecodeRange(from, to)
		if err != nil {
			writeDecodeError(w, p.name, err)
			return
		}
		// Cache headers only on the success path: error responses must not
		// be cached as immutable.
		if traced {
			w.Header().Set("Cache-Control", "no-store")
			w.Header().Set("Atc-Trace", tr.Header())
			writeJSON(w, map[string]any{"name": p.name, "from": from, "to": to,
				"addrs": addrs, "trace": tr.Summary()})
			return
		}
		w.Header().Set("Etag", etag)
		w.Header().Set("Cache-Control", addrsCacheControl)
		writeJSON(w, map[string]any{"name": p.name, "from": from, "to": to, "addrs": addrs})
		return
	}
	// Binary: raw 64-bit little-endian values, the bin2atc/atc2bin wire
	// format, so curl output diffs directly against atc2bin output. The
	// window is decoded and written in bounded batches through one reused
	// buffer, so a -max-range request costs serveBatchAddrs of transient
	// memory, not the whole window. The first batch decodes before any
	// header is written, keeping decode failures a clean 500; a later
	// failure truncates the body short of Content-Length, which clients
	// detect. A traced response decodes the whole window before writing the
	// Atc-Trace header, so the header covers every stage (headers cannot
	// follow the first body byte); the batching still bounds memory.
	dFrom, dTo := from, to
	if partial {
		// Smallest address window covering the byte range: floor the start,
		// ceil the end to the next address boundary.
		dFrom = from + rng.start/8
		dTo = from + rng.end/8 + 1
	}
	buf, err := rd.DecodeRange(dFrom, min64(dFrom+serveBatchAddrs, dTo))
	if err != nil {
		writeDecodeError(w, p.name, err)
		return
	}
	if traced {
		w.Header().Set("Cache-Control", "no-store")
	} else {
		w.Header().Set("Etag", etag)
		w.Header().Set("Cache-Control", addrsCacheControl)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	var out io.Writer = w
	if partial {
		w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", rng.start, rng.end, byteLen))
		w.Header().Set("Content-Length", strconv.FormatInt(rng.end-rng.start+1, 10))
		out = &byteWindowWriter{w: w, skip: rng.start % 8, n: rng.end - rng.start + 1}
		w.WriteHeader(http.StatusPartialContent)
	} else {
		w.Header().Set("Content-Length", strconv.FormatInt(byteLen, 10))
	}
	tw := trace.NewWriter(out)
	for pos := dFrom; ; {
		if pos == dFrom && traced {
			// Finish decoding before the first write commits the headers.
			rest := [][]uint64{}
			for next := dFrom + int64(len(buf)); next < dTo; {
				batch, err := rd.DecodeRange(next, min64(next+serveBatchAddrs, dTo))
				if err != nil {
					writeDecodeError(w, p.name, err)
					return
				}
				rest = append(rest, batch)
				next += int64(len(batch))
			}
			w.Header().Set("Atc-Trace", tr.Header())
			start := time.Now()
			if err := tw.WriteSlice(buf); err != nil {
				return
			}
			for _, batch := range rest {
				if err := tw.WriteSlice(batch); err != nil {
					return
				}
			}
			tw.Flush()
			tr.AddNS(obs.StageDeliver, time.Since(start).Nanoseconds())
			return
		}
		start := time.Now()
		err := tw.WriteSlice(buf)
		tr.AddNS(obs.StageDeliver, time.Since(start).Nanoseconds())
		if err != nil {
			return // client went away; nothing useful to report mid-body
		}
		pos += int64(len(buf))
		if pos >= dTo {
			break
		}
		if buf, err = rd.DecodeRangeAppend(buf[:0], pos, min64(pos+serveBatchAddrs, dTo)); err != nil {
			return
		}
	}
	tw.Flush()
}

// byteRange is one inbound satisfiable byte range, inclusive on both
// ends per RFC 9110, relative to the binary payload of the requested
// address window.
type byteRange struct{ start, end int64 }

// parseByteRange interprets an inbound Range header against a payload of
// size bytes. It returns ok=false — serve the full representation — for
// an absent header, a non-bytes unit, multiple ranges, syntactic garbage
// or an inverted range (all "ignore the header" cases per RFC 9110), and
// an error — answer 416 — only for a syntactically valid single range
// that cannot be satisfied (first byte at or past the end, or an empty
// suffix). A last-byte position past the end clamps, as the RFC requires.
func parseByteRange(h string, size int64) (byteRange, bool, error) {
	if h == "" {
		return byteRange{}, false, nil
	}
	spec, found := strings.CutPrefix(h, "bytes=")
	if !found || strings.Contains(spec, ",") {
		return byteRange{}, false, nil
	}
	first, last, found := strings.Cut(strings.TrimSpace(spec), "-")
	if !found {
		return byteRange{}, false, nil
	}
	if first == "" {
		// Suffix form bytes=-n: the final n bytes.
		n, err := strconv.ParseInt(last, 10, 64)
		if err != nil || n < 0 {
			return byteRange{}, false, nil
		}
		if n == 0 || size == 0 {
			return byteRange{}, false, fmt.Errorf("suffix of %d bytes of a %d-byte payload", n, size)
		}
		start := size - n
		if start < 0 {
			start = 0
		}
		return byteRange{start, size - 1}, true, nil
	}
	start, err := strconv.ParseInt(first, 10, 64)
	if err != nil || start < 0 {
		return byteRange{}, false, nil
	}
	end := size - 1
	if last != "" {
		if end, err = strconv.ParseInt(last, 10, 64); err != nil {
			return byteRange{}, false, nil
		}
		if end < start {
			return byteRange{}, false, nil
		}
		if end > size-1 {
			end = size - 1
		}
	}
	if start >= size {
		return byteRange{}, false, fmt.Errorf("first byte %d of a %d-byte payload", start, size)
	}
	return byteRange{start, end}, true, nil
}

// ifRangeAllows reports whether an If-Range header permits a partial
// response: no header, or an exact match of the current strong ETag.
// Date forms never match (the payload validator is the ETag).
func ifRangeAllows(h, etag string) bool {
	if h == "" {
		return true
	}
	return strings.TrimSpace(h) == etag
}

// byteWindowWriter passes through the byte window [skip, skip+n) of what
// is written to it and swallows the rest, so the batched decode loop can
// stream whole 8-byte addresses while the client receives exactly the
// requested bytes. It always reports the full input consumed; the decode
// loop stops on its own once the covering address window is written.
type byteWindowWriter struct {
	w    io.Writer
	skip int64 // leading bytes still to drop
	n    int64 // payload bytes still to pass through
}

func (bw *byteWindowWriter) Write(p []byte) (int, error) {
	total := len(p)
	if bw.skip > 0 {
		if int64(total) <= bw.skip {
			bw.skip -= int64(total)
			return total, nil
		}
		p = p[bw.skip:]
		bw.skip = 0
	}
	if bw.n <= 0 {
		return total, nil
	}
	if int64(len(p)) > bw.n {
		p = p[:bw.n]
	}
	written, err := bw.w.Write(p)
	bw.n -= int64(written)
	if err != nil {
		return total, err
	}
	return total, nil
}

// serveBatchAddrs is the binary response's per-batch decode size: 256 Ki
// addresses, 2 MB on the wire.
const serveBatchAddrs = 256 << 10

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
