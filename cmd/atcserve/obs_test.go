package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"atc"
	"atc/internal/obs"
)

// serveObsTrace is serveTestTrace with the shared chunk cache on and the
// pool registered on the default registry — the production configuration
// the observability tests pin.
func serveObsTrace(t *testing.T) *httptest.Server {
	t.Helper()
	addrs := make([]uint64, 40_000)
	for i := range addrs {
		addrs[i] = uint64(i * 64)
	}
	path := filepath.Join(t.TempDir(), "unit.atc")
	w, err := atc.CreateArchive(path,
		atc.WithMode(atc.Lossless), atc.WithSegmentAddrs(5000), atc.WithBufferAddrs(1000))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.CodeSlice(addrs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	pool, err := openTrace("unit", path, poolConfig{readers: 2, sharedCache: 16, reg: obs.Default()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer((&server{pools: map[string]*tracePool{"unit": pool}, maxRange: 1 << 20, maxWait: 5 * time.Second}).handler())
	t.Cleanup(func() {
		srv.Close()
		pool.close()
	})
	return srv
}

// TestMetaJSONShape is the /meta regression gate: the exact key set of the
// JSON body must not drift while counters move to registry-backed views.
// Consumers parse these fields by name; adding a key requires updating
// this test deliberately, renaming or dropping one fails it.
func TestMetaJSONShape(t *testing.T) {
	srv := serveObsTrace(t)
	// Two identical range reads make every counter key non-zero (the
	// second is a shared-cache hit), so omitempty can't hide a rename.
	for i := 0; i < 2; i++ {
		resp, err := http.Get(srv.URL + "/traces/unit/addrs?from=4000&to=7000")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/traces/unit/meta")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	got := make([]string, 0, len(body))
	for k := range body {
		got = append(got, k)
	}
	sort.Strings(got)
	want := []string{
		"chunkReads", "chunks", "formatVersion", "mode", "name", "records",
		"segmentAddrs", "sharedCacheHits", "sharedCacheLoads", "totalAddrs",
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("/meta keys = %v, want %v", got, want)
	}
	if body["chunkReads"].(float64) != 2 {
		t.Fatalf("chunkReads = %v, want 2", body["chunkReads"])
	}
}

// TestServeTraceTimings pins the ?trace=1 contract: an Atc-Trace header
// and an embedded stage-timing summary whose total is positive, equals
// the per-stage sum, and fits inside the measured request duration; the
// diagnostic response is uncacheable and skips validator short-cuts.
func TestServeTraceTimings(t *testing.T) {
	srv := serveObsTrace(t)
	start := time.Now()
	resp, err := http.Get(srv.URL + "/traces/unit/addrs?from=4000&to=7000&format=json&trace=1")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Addrs []uint64         `json:"addrs"`
		Trace obs.TraceSummary `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	wall := time.Since(start)
	if resp.Header.Get("Atc-Trace") == "" {
		t.Fatal("traced response has no Atc-Trace header")
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("traced Cache-Control = %q, want no-store", cc)
	}
	if et := resp.Header.Get("Etag"); et != "" {
		t.Fatalf("traced response carries ETag %q", et)
	}
	if len(body.Addrs) != 3000 {
		t.Fatalf("traced decode returned %d addrs, want 3000", len(body.Addrs))
	}
	if body.Trace.TotalNS <= 0 {
		t.Fatalf("trace total = %d ns, want > 0", body.Trace.TotalNS)
	}
	var sum int64
	for _, st := range body.Trace.Stages {
		if st.NS < 0 {
			t.Fatalf("stage %s negative: %d ns", st.Stage, st.NS)
		}
		sum += st.NS
	}
	if sum != body.Trace.TotalNS {
		t.Fatalf("stage sum %d != totalNs %d", sum, body.Trace.TotalNS)
	}
	if sum > wall.Nanoseconds() {
		t.Fatalf("stage sum %v exceeds measured request duration %v", time.Duration(sum), wall)
	}
	if body.Trace.ChunkLoads == 0 {
		t.Fatal("traced cold decode reports no chunk loads")
	}

	// Binary path: same header contract, full payload.
	resp2, err := http.Get(srv.URL + "/traces/unit/addrs?from=4000&to=7000&trace=1")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.Header.Get("Atc-Trace") == "" {
		t.Fatal("traced binary response has no Atc-Trace header")
	}
	if len(raw) != 3000*8 {
		t.Fatalf("traced binary body = %d bytes, want %d", len(raw), 3000*8)
	}

	// A matching validator must not short-circuit a traced request: the
	// client asked for fresh timings, not the cached payload.
	plain, err := http.Get(srv.URL + "/traces/unit/addrs?from=4000&to=7000")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, plain.Body)
	plain.Body.Close()
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/traces/unit/addrs?from=4000&to=7000&trace=1", nil)
	req.Header.Set("If-None-Match", plain.Header.Get("Etag"))
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("traced revalidation: status %d, want 200 (fresh timings)", resp3.StatusCode)
	}
}

// TestServeMetricsExposition drives real requests through the server and
// asserts the default registry exposes the serving tier's key series in
// Prometheus text format — the same surface the CI smoke test curls.
func TestServeMetricsExposition(t *testing.T) {
	srv := serveObsTrace(t)
	resp, err := http.Get(srv.URL + "/traces/unit/addrs?from=4000&to=7000")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/traces/unit/addrs?from=4000&to=7000", nil)
	req.Header.Set("If-None-Match", resp.Header.Get("Etag"))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation: status %d, want 304", resp2.StatusCode)
	}

	rec := httptest.NewRecorder()
	obs.Default().Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	out := rec.Body.String()
	for _, want := range []string{
		// HTTP tier.
		`atc_http_requests_total{class="2xx",route="addrs"} `,
		`atc_http_request_seconds_bucket{route="addrs",le="+Inf"} `,
		`atc_http_request_seconds_count{route="addrs"} `,
		"atc_http_in_flight_requests 0\n",
		"# TYPE atc_http_pool_wait_seconds histogram\n",
		"# TYPE atc_http_not_modified_total counter\n",
		// Decode path.
		"# TYPE atc_decode_chunk_loads_total counter\n",
		"# TYPE atc_decode_stage_seconds histogram\n",
		// Per-trace thin views over the pool's live counters.
		`atc_trace_chunk_reads_total{trace="unit"} `,
		`atc_chunk_cache_loads_total{trace="unit"} `,
		// Remote store series exist at zero even in a local-only process.
		"# TYPE atc_remote_fetches_total counter\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", out)
	}
}
