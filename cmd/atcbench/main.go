// Command atcbench regenerates the paper's tables and figures from the
// synthetic workload suite. Each experiment prints rows shaped like the
// paper's; DESIGN.md §4 maps experiments to paper counterparts and
// EXPERIMENTS.md records reference outputs.
//
// Usage:
//
//	atcbench -table1                 # Table 1 at scaled defaults
//	atcbench -table1 -n 100000000    # Table 1 at paper scale (slow)
//	atcbench -all                    # everything
//	atcbench -fig3 -models 470.lbm,429.mcf
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"atc/internal/experiment"
	"atc/internal/obs"
)

func main() {
	var (
		all    = flag.Bool("all", false, "run every experiment")
		table1 = flag.Bool("table1", false, "Table 1: lossless BPA, five compressors")
		table2 = flag.Bool("table2", false, "Table 2: decompression speed")
		table3 = flag.Bool("table3", false, "Table 3: lossless vs lossy BPA")
		fig3   = flag.Bool("fig3", false, "Figure 3: miss ratios, exact vs lossy")
		fig4   = flag.Bool("fig4", false, "Figure 4: byte-translation ablation")
		fig5   = flag.Bool("fig5", false, "Figure 5: C/DC predictor, exact vs lossy")
		fig8   = flag.Bool("fig8", false, "Figure 8: random-trace demonstration")
		long   = flag.Bool("longtrace", false, "§6 claim: lossy BPA vs trace length")

		epsSweep  = flag.Bool("epssweep", false, "extension: threshold sweep")
		lSweep    = flag.Bool("lsweep", false, "extension: interval-length (myopic) sweep")
		segSweep  = flag.Bool("segsweep", false, "extension: lossless segment-size sweep (BPA cost of parallelism)")
		backends  = flag.Bool("backends", false, "extension: back-end ablation")
		histSweep = flag.Bool("histsweep", false, "extension: phase-table capacity sweep")
		detectors = flag.Bool("detectors", false, "extension: histogram vs working-set-signature phase detection")
		optCmp    = flag.Bool("optcompare", false, "extension: LRU vs Belady/OPT fidelity on lossy traces")

		n        = flag.Int("n", 0, "addresses per trace (0 = scaled default)")
		seed     = flag.Uint64("seed", experiment.DefaultSeed, "workload seed")
		modelsCS = flag.String("models", "", "comma-separated model subset (default: experiment-specific)")
		backend  = flag.String("backend", "bsc", "byte-level back end")
		workers  = flag.Int("workers", 0, "chunk-compression workers (default GOMAXPROCS; 1 = synchronous)")
		segment  = flag.Int("segment", 0, "lossless segment length in addresses (default 16Mi; -1 = legacy single chunk)")
		archive  = flag.Bool("archive", false, "compress experiment traces into single-file .atc archives instead of directories")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (after the experiments) to this file")
		metrics    = flag.Bool("metrics", false, "after the experiments, print the process metrics registry (Prometheus text format) to stderr")
	)
	flag.Parse()
	if *cpuprofile != "" || *memprofile != "" {
		startProfiles(*cpuprofile, *memprofile)
		defer finishProfiles()
	}
	experiment.Workers = *workers
	experiment.SegmentAddrs = *segment
	experiment.Archive = *archive

	var models []string
	if *modelsCS != "" {
		for _, m := range strings.Split(*modelsCS, ",") {
			models = append(models, strings.TrimSpace(m))
		}
	}
	tc := experiment.NewTraceCache()
	ran := false
	start := time.Now()

	if *all || *table1 || *table2 {
		cfg := experiment.Table1Config{Models: models, N: *n, Seed: *seed, Backend: *backend}
		t1, err := experiment.RunTable1(cfg, tc)
		check(err)
		if *all || *table1 {
			t1.Render(os.Stdout)
			fmt.Println()
		}
		if *all || *table2 {
			t2, err := experiment.RunTable2(cfg, t1, tc)
			check(err)
			t2.Render(os.Stdout)
			fmt.Println()
		}
		ran = true
	}
	if *all || *table3 {
		cfg := experiment.Table3Config{Models: models, N: *n, Seed: *seed, Backend: *backend}
		res, err := experiment.RunTable3(cfg, tc)
		check(err)
		res.Render(os.Stdout)
		fmt.Println()
		ran = true
	}
	if *all || *fig3 {
		cfg := experiment.Figure3Config{Models: models, N: *n, Seed: *seed, Backend: *backend}
		res, err := experiment.RunFigure3(cfg, tc)
		check(err)
		res.Render(os.Stdout)
		fmt.Println()
		ran = true
	}
	if *all || *fig4 {
		cfg := experiment.Figure4Config{N: *n, Seed: *seed, Backend: *backend}
		if len(models) == 1 {
			cfg.Model = models[0]
		}
		res, err := experiment.RunFigure4(cfg, tc)
		check(err)
		res.Render(os.Stdout)
		fmt.Println()
		ran = true
	}
	if *all || *fig5 {
		cfg := experiment.Figure5Config{Models: models, N: *n, Seed: *seed, Backend: *backend}
		res, err := experiment.RunFigure5(cfg, tc)
		check(err)
		res.Render(os.Stdout)
		fmt.Println()
		ran = true
	}
	if *all || *fig8 {
		cfg := experiment.Figure8Config{N: *n, Seed: *seed, Backend: *backend}
		res, err := experiment.RunFigure8(cfg)
		check(err)
		res.Render(os.Stdout)
		fmt.Println()
		ran = true
	}
	if *all || *long {
		cfg := experiment.LongTraceConfig{Seed: *seed, Backend: *backend}
		if len(models) == 1 {
			cfg.Model = models[0]
		}
		res, err := experiment.RunLongTrace(cfg, tc)
		check(err)
		res.Render(os.Stdout)
		fmt.Println()
		ran = true
	}
	if *all || *epsSweep {
		cfg := experiment.EpsilonSweepConfig{N: *n, Seed: *seed, Backend: *backend}
		if len(models) == 1 {
			cfg.Model = models[0]
		}
		res, err := experiment.RunEpsilonSweep(cfg, tc)
		check(err)
		res.Render(os.Stdout)
		fmt.Println()
		ran = true
	}
	if *all || *lSweep {
		cfg := experiment.IntervalSweepConfig{N: *n, Seed: *seed, Backend: *backend}
		if len(models) == 1 {
			cfg.Model = models[0]
		}
		res, err := experiment.RunIntervalSweep(cfg, tc)
		check(err)
		res.Render(os.Stdout)
		fmt.Println()
		ran = true
	}
	if *all || *segSweep {
		cfg := experiment.SegmentSweepConfig{N: *n, Seed: *seed, Backend: *backend}
		if len(models) == 1 {
			cfg.Model = models[0]
		}
		res, err := experiment.RunSegmentSweep(cfg, tc)
		check(err)
		res.Render(os.Stdout)
		fmt.Println()
		ran = true
	}
	if *all || *backends {
		cfg := experiment.BackendCompareConfig{Models: models, N: *n, Seed: *seed}
		res, err := experiment.RunBackendCompare(cfg, tc)
		check(err)
		res.Render(os.Stdout)
		fmt.Println()
		ran = true
	}
	if *all || *histSweep {
		cfg := experiment.HistorySweepConfig{N: *n, Seed: *seed, Backend: *backend}
		if len(models) == 1 {
			cfg.Model = models[0]
		}
		res, err := experiment.RunHistorySweep(cfg, tc)
		check(err)
		res.Render(os.Stdout)
		fmt.Println()
		ran = true
	}

	if *all || *detectors {
		cfg := experiment.DetectorCompareConfig{Models: models, N: *n, Seed: *seed}
		res, err := experiment.RunDetectorCompare(cfg, tc)
		check(err)
		res.Render(os.Stdout)
		fmt.Println()
		ran = true
	}

	if *all || *optCmp {
		cfg := experiment.OptCompareConfig{Models: models, N: *n, Seed: *seed, Backend: *backend}
		res, err := experiment.RunOptCompare(cfg, tc)
		check(err)
		res.Render(os.Stdout)
		fmt.Println()
		ran = true
	}

	if !ran {
		fmt.Fprintln(os.Stderr, "atcbench: select an experiment (-all, -table1, -table2, -table3, -fig3, -fig4, -fig5, -fig8, -longtrace, -epssweep, -lsweep, -segsweep, -backends, -histsweep, -detectors, -optcompare)")
		flag.PrintDefaults()
		finishProfiles()
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "atcbench: done in %s\n", time.Since(start).Round(time.Millisecond))
	if *metrics {
		// Final registry state: encode/decode counters and latency
		// histograms accumulated across every selected experiment — the
		// same series atcserve exports live on /metrics. Stderr so it
		// never interleaves with the experiment tables on stdout.
		if err := obs.Default().WritePrometheus(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "atcbench:", err)
		}
	}
}

// finishProfiles terminates any active -cpuprofile/-memprofile outputs.
// It is idempotent and runs on every exit path — deferred from main, and
// from check/os.Exit sites, which skip defers — so a failing experiment
// still leaves a valid, parseable CPU profile instead of a truncated one
// (the failing runs are the ones most worth profiling).
var finishProfiles = func() {}

// startProfiles begins CPU profiling (when cpu is non-empty) and arms
// finishProfiles to stop it and to write the heap profile (when mem is
// non-empty).
func startProfiles(cpu, mem string) {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		check(err)
		check(pprof.StartCPUProfile(f))
		cpuF = f
	}
	var once sync.Once
	finishProfiles = func() {
		once.Do(func() {
			if cpuF != nil {
				pprof.StopCPUProfile()
				if err := cpuF.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "atcbench:", err)
				}
			}
			if mem != "" {
				f, err := os.Create(mem)
				if err != nil {
					fmt.Fprintln(os.Stderr, "atcbench:", err)
					return
				}
				runtime.GC() // report live allocations, not garbage
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, "atcbench:", err)
				}
				if err := f.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "atcbench:", err)
				}
			}
		})
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "atcbench:", err)
		finishProfiles()
		os.Exit(1)
	}
}
