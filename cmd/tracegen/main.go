// Command tracegen generates synthetic cache-filtered address traces from
// the workload models that stand in for the paper's SPEC CPU2006 suite.
// Traces are written to standard output as 64-bit little-endian block
// addresses, ready for bin2atc or cachesim.
//
// Usage:
//
//	tracegen -model 429.mcf -n 1000000 > mcf.trace
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"atc/internal/trace"
	"atc/internal/workload"
)

func main() {
	model := flag.String("model", "", "workload model name (see -list)")
	n := flag.Int("n", 1_000_000, "number of filtered addresses to generate")
	seed := flag.Uint64("seed", 2009, "generator seed")
	list := flag.Bool("list", false, "list available models and exit")
	stats := flag.Bool("stats", false, "print trace statistics to stderr")
	flag.Parse()

	if *list {
		for _, m := range workload.Models() {
			fmt.Printf("%-16s %s\n", m.Name, m.Description)
		}
		return
	}
	if *model == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -model is required (or -list)")
		os.Exit(2)
	}
	addrs, err := workload.GenerateFiltered(*model, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	if err := trace.WriteAll(os.Stdout, addrs); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "tracegen: %s\n", trace.ComputeStats(addrs))
	}
}
