// Command cdcsim runs the C/DC address predictor of the paper's §5.3 over
// a trace of block addresses read from standard input and reports the
// shares of non-predicted, correctly predicted and mispredicted addresses
// (the Figure 5 metric).
//
// Usage:
//
//	tracegen -model 456.hmmer -n 1000000 | cdcsim
//	atc2bin trace.atc | cdcsim -czone-bits 10
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"atc/internal/cdc"
	"atc/internal/trace"
)

func main() {
	czoneBits := flag.Uint("czone-bits", 10, "log2 of the CZone size in blocks (10 = 64KB zones of 64B blocks)")
	indexEntries := flag.Int("index", 256, "index table entries")
	ghbEntries := flag.Int("ghb", 256, "global history buffer entries")
	flag.Parse()

	p, err := cdc.New(cdc.Config{
		CZoneBlockBits: *czoneBits,
		IndexEntries:   *indexEntries,
		GHBEntries:     *ghbEntries,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdcsim:", err)
		os.Exit(2)
	}
	r := trace.NewReader(os.Stdin)
	for {
		a, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "cdcsim:", err)
			os.Exit(1)
		}
		p.Access(a)
	}
	c := p.Counts()
	np, cor, inc := c.Fractions()
	fmt.Printf("addresses:     %d\n", c.Total())
	fmt.Printf("non-predicted: %d (%.2f%%)\n", c.NonPredicted, 100*np)
	fmt.Printf("correct:       %d (%.2f%%)\n", c.Correct, 100*cor)
	fmt.Printf("incorrect:     %d (%.2f%%)\n", c.Incorrect, 100*inc)
}
