// Package badpkg is a deliberately non-compliant package for the atcvet
// driver smoke test: it compiles, but violates three of the four conventions
// the suite enforces. main_test asserts that both the standalone driver and
// the go vet protocol surface these findings with a nonzero exit.
package badpkg

import (
	"encoding/binary"
	"errors"
)

// parseRecord is on the decode path but returns a bare error (errcorrupt)
// and sizes an allocation from an unchecked wire count (untrustedlen).
//
//atc:decodepath
func parseRecord(b []byte) ([]uint64, error) {
	if len(b) < 4 {
		return nil, errors.New("short record")
	}
	n := int(binary.LittleEndian.Uint32(b))
	out := make([]uint64, n)
	return out, nil
}

// Checksum allocates on an annotated hot path (hotalloc).
//
//atc:hotpath
func Checksum(xs []uint64) []byte {
	buf := make([]byte, 8)
	var sum uint64
	for _, x := range xs {
		sum += x
	}
	binary.LittleEndian.PutUint64(buf, sum)
	return buf
}
