// Package goodpkg is a compliant package for the atcvet driver smoke test:
// the driver must exit 0 and print nothing over it.
package goodpkg

import (
	"encoding/binary"
	"fmt"
)

// ErrCorrupt is the sentinel decode errors wrap.
var ErrCorrupt = fmt.Errorf("goodpkg: corrupt input")

const maxRecords = 1 << 20

// parseRecord bounds the wire count before allocating and wraps the
// sentinel on every error path.
//
//atc:decodepath
func parseRecord(b []byte) ([]uint64, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: short record (%d bytes)", ErrCorrupt, len(b))
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n > maxRecords {
		return nil, fmt.Errorf("%w: record count %d exceeds %d", ErrCorrupt, n, maxRecords)
	}
	out := make([]uint64, n)
	return out, nil
}

// Checksum stays allocation-free by summing into a caller-provided buffer.
//
//atc:hotpath
func Checksum(dst []byte, xs []uint64) {
	var sum uint64
	for _, x := range xs {
		sum += x
	}
	binary.LittleEndian.PutUint64(dst, sum)
}
