// Command atcvet runs the repo's static-analysis suite (internal/lint):
// errcorrupt, untrustedlen, hotalloc and poolreturn.
//
// It speaks two protocols:
//
//   - Standalone: `atcvet ./...` loads packages itself via `go list -export`
//     and prints findings to stdout.
//
//   - Vettool: `go vet -vettool=$(which atcvet) ./...` — the go command
//     first invokes the tool with -V=full (a version/build-ID handshake used
//     for result caching), then once per package with a single *.cfg
//     argument naming a JSON file that carries the file list, export-data
//     locations and import map. Findings go to stderr, as go vet expects.
//
// Exit status: 0 clean, 1 internal or load error, 2 findings.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"

	"atc/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches between the three modes; factored out of main so the tests
// can assert on exit codes and output without spawning a process.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		// The go command requires `<name> version <id>` and caches vet
		// results keyed on id, so the id must change whenever the binary
		// does: hash the executable.
		fmt.Fprintf(stdout, "atcvet version atcvet-%s\n", binaryID())
		return 0
	}
	if len(args) == 1 && args[0] == "-flags" {
		// The go command asks which flags the tool accepts (a JSON array
		// of flag definitions) so it can route command-line flags; atcvet
		// takes none.
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVet(args[0], stderr)
	}
	return runStandalone(args, stdout, stderr)
}

// binaryID returns a short content hash of the running executable.
func binaryID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

// vetConfig is the subset of the go command's per-package vet.cfg JSON that
// atcvet consumes (see cmd/go/internal/work.vetConfig).
type vetConfig struct {
	Compiler    string            // "gc" or "gccgo"
	Dir         string            // package directory
	ImportPath  string            // canonical package path
	GoFiles     []string          // absolute paths to the package's Go files
	ImportMap   map[string]string // source import path -> canonical path
	PackageFile map[string]string // canonical path -> export-data file
	VetxOnly    bool              // facts-only run for a dependency
	VetxOutput  string            // facts file the driver expects us to write

	SucceedOnTypecheckFailure bool
}

// runVet executes one unit of the go vet protocol: analyze the single
// package described by the cfg file.
func runVet(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "atcvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "atcvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The driver requires the facts file to exist after every run, even a
	// clean or facts-only one; the suite computes no cross-package facts,
	// so the file is a constant.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte("atcvet: no facts\n"), 0o666); err != nil {
				fmt.Fprintf(stderr, "atcvet: %v\n", err)
			}
		}
	}

	// All four analyzers are intra-package: a facts-only pass over a
	// dependency has nothing to compute.
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}
	if cfg.Compiler != "gc" {
		writeVetx()
		fmt.Fprintf(stderr, "atcvet: unsupported compiler %q\n", cfg.Compiler)
		return 1
	}

	fset := token.NewFileSet()
	imp := lint.VetImporter(fset, cfg.PackageFile, cfg.ImportMap)
	pkg, err := lint.TypeCheckFiles(fset, cfg.ImportPath, cfg.GoFiles, imp)
	if err != nil {
		writeVetx()
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "atcvet: %v\n", err)
		return 1
	}
	writeVetx()

	diags, err := lint.RunPackage(pkg, lint.Suite())
	if err != nil {
		fmt.Fprintf(stderr, "atcvet: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// runStandalone loads the packages matching the patterns (default ./...)
// and runs the suite over each.
func runStandalone(patterns []string, stdout, stderr io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPatterns(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "atcvet: %v\n", err)
		return 1
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := lint.RunPackage(pkg, lint.Suite())
		if err != nil {
			fmt.Fprintf(stderr, "atcvet: %v\n", err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s: [%s] %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		found += len(diags)
	}
	if found > 0 {
		return 2
	}
	return 0
}
