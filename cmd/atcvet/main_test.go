package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestStandaloneBadPackage is the driver smoke test over a known-bad
// fixture: exit status 2 and one finding from each violated analyzer.
func TestStandaloneBadPackage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"./testdata/src/badpkg"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit status = %d, want 2 (findings); stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"[errcorrupt] ",
		"does not wrap a sentinel",
		"[untrustedlen] ",
		"[hotalloc] ",
		"badpkg.go:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("standalone output missing %q; got:\n%s", want, out)
		}
	}
}

// TestStandaloneGoodPackage: a compliant package yields exit 0 and silence.
func TestStandaloneGoodPackage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"./testdata/src/goodpkg"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit status = %d, want 0; stdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean package produced output:\n%s", stdout.String())
	}
}

// TestVersionHandshake checks the -V=full line the go command parses before
// trusting a vettool: `<name> version <id>` with a nonempty id.
func TestVersionHandshake(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-V=full"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit status = %d, want 0", code)
	}
	f := strings.Fields(strings.TrimSpace(stdout.String()))
	if len(f) < 3 || f[0] != "atcvet" || f[1] != "version" || f[2] == "" {
		t.Fatalf("handshake line %q does not match `atcvet version <id>`", stdout.String())
	}
}

// TestGoVetProtocol builds the binary and drives it through the real
// `go vet -vettool` protocol over the bad fixture: go vet must fail and
// relay the diagnostics.
func TestGoVetProtocol(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go command not available")
	}
	tool := filepath.Join(t.TempDir(), "atcvet")
	build := exec.Command("go", "build", "-o", tool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building atcvet: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+tool, "./testdata/src/badpkg")
	vet.Env = os.Environ()
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet over badpkg succeeded; want findings. output:\n%s", out)
	}
	for _, want := range []string{"[errcorrupt]", "[untrustedlen]", "[hotalloc]"} {
		if !bytes.Contains(out, []byte(want)) {
			t.Errorf("go vet output missing %q; got:\n%s", want, out)
		}
	}

	clean := exec.Command("go", "vet", "-vettool="+tool, "./testdata/src/goodpkg")
	clean.Env = os.Environ()
	if out, err := clean.CombinedOutput(); err != nil {
		t.Fatalf("go vet over goodpkg failed: %v\n%s", err, out)
	}
}
