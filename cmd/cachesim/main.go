// Command cachesim computes LRU miss ratios for a trace of block addresses
// read from standard input, across all associativities up to -maxassoc and
// one or more set counts, in a single pass (Cheetah-style stack-distance
// simulation). This is the tool behind the paper's Figure 3 curves.
//
// Usage:
//
//	tracegen -model 470.lbm -n 1000000 | cachesim -sets 512,2048,8192
//	atc2bin mcf.atc | cachesim -sets 4096 -maxassoc 16
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"atc/internal/cheetah"
	"atc/internal/trace"
)

func main() {
	setsFlag := flag.String("sets", "512,2048,8192,32768", "comma-separated set counts (powers of two)")
	maxAssoc := flag.Int("maxassoc", 32, "largest associativity to report")
	flag.Parse()

	var setCounts []int
	for _, s := range strings.Split(*setsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintf(os.Stderr, "cachesim: bad set count %q\n", s)
			os.Exit(2)
		}
		setCounts = append(setCounts, v)
	}
	grid, err := cheetah.NewGrid(setCounts, *maxAssoc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachesim:", err)
		os.Exit(2)
	}

	r := trace.NewReader(os.Stdin)
	for {
		a, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "cachesim:", err)
			os.Exit(1)
		}
		grid.Access(a)
	}

	fmt.Printf("# %d addresses\n", r.Count())
	fmt.Printf("%8s %6s %10s\n", "sets", "assoc", "missratio")
	for _, sim := range grid.Simulators() {
		for a := 1; a <= sim.MaxAssoc(); a++ {
			fmt.Printf("%8d %6d %10.6f\n", sim.Sets(), a, sim.MissRatio(a))
		}
	}
}
