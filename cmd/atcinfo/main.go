// Command atcinfo inspects a compressed trace directory: mode, parameters,
// record mix, per-chunk sizes and the effective bits per address.
//
// Usage:
//
//	atcinfo <directory>
package main

import (
	"flag"
	"fmt"
	"os"

	"atc"
	"atc/internal/core"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: atcinfo <directory>\n")
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	dir := flag.Arg(0)
	d, err := core.Open(dir, core.DecodeOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "atcinfo:", err)
		os.Exit(1)
	}
	defer d.Close()

	fmt.Printf("mode:          %s\n", d.Mode())
	fmt.Printf("format:        v%d\n", d.FormatVersion())
	fmt.Printf("addresses:     %d\n", d.TotalAddrs())
	if d.Mode() == core.Lossy {
		fmt.Printf("interval (L):  %d\n", d.IntervalLen())
		fmt.Printf("epsilon:       %g\n", d.Epsilon())
		fmt.Printf("records:       %d\n", d.Records())
	} else if d.SegmentAddrs() > 0 {
		fmt.Printf("segment:       %d addresses\n", d.SegmentAddrs())
		fmt.Printf("segments:      %d\n", d.Records())
	}
	size, err := core.DirSize(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atcinfo:", err)
		os.Exit(1)
	}
	fmt.Printf("size on disk:  %d bytes\n", size)
	if d.TotalAddrs() > 0 {
		bpa, err := atc.BitsPerAddress(dir, d.TotalAddrs())
		if err == nil {
			fmt.Printf("bits/address:  %.4f\n", bpa)
			fmt.Printf("ratio vs raw:  %.2fx\n", 64/bpa)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atcinfo:", err)
		os.Exit(1)
	}
	fmt.Println("files:")
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		fmt.Printf("  %-16s %12d bytes\n", e.Name(), fi.Size())
	}
}
