// Command atcinfo inspects a compressed trace — a directory, a
// single-file .atc archive, or an http(s) URL of an archive in object
// storage, auto-detected: mode, parameters, record mix, per-blob sizes
// and the effective bits per address. With -chunks it prints the chunk
// index the decoder navigates by: every record's absolute address range,
// its backing chunk (the source chunk for lossy imitations) and the
// compressed blob size. Remote archives are inspected in place over HTTP
// Range reads — metadata costs a few ranged GETs, never a download.
//
// Usage:
//
//	atcinfo [-chunks] <directory | file.atc | http(s)://...>
package main

import (
	"flag"
	"fmt"
	"os"

	"atc"
	"atc/internal/core"
	"atc/internal/store"
)

func main() {
	archive := flag.Bool("archive", false, "require a single-file .atc archive (no directory fallback)")
	chunks := flag.Bool("chunks", false, "list the chunk index: per record, its address range, backing chunk and compressed size")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: atcinfo [flags] <directory | file.atc | http(s)://...>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	d, err := core.Open(path, core.DecodeOptions{Archive: *archive})
	if err != nil {
		fmt.Fprintln(os.Stderr, "atcinfo:", err)
		os.Exit(1)
	}
	defer d.Close()

	// Report the layout that was actually opened, not a re-derived guess.
	layout := "custom"
	switch d.Store().(type) {
	case *store.RemoteStore:
		layout = "remote archive"
	case *store.ArchiveStore:
		layout = "archive"
	case *store.DirStore:
		layout = "directory"
	}
	fmt.Printf("mode:          %s\n", d.Mode())
	fmt.Printf("format:        v%d\n", d.FormatVersion())
	fmt.Printf("layout:        %s\n", layout)
	fmt.Printf("addresses:     %d\n", d.TotalAddrs())
	if d.Mode() == core.Lossy {
		fmt.Printf("interval (L):  %d\n", d.IntervalLen())
		fmt.Printf("epsilon:       %g\n", d.Epsilon())
		fmt.Printf("records:       %d\n", d.Records())
	} else if d.SegmentAddrs() > 0 {
		fmt.Printf("segment:       %d addresses\n", d.SegmentAddrs())
		fmt.Printf("segments:      %d\n", d.Records())
	}
	size, err := core.StoreSize(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atcinfo:", err)
		os.Exit(1)
	}
	fmt.Printf("size on disk:  %d bytes\n", size)
	if d.TotalAddrs() > 0 {
		bpa, err := atc.BitsPerAddress(path, d.TotalAddrs())
		if err == nil {
			fmt.Printf("bits/address:  %.4f\n", bpa)
			fmt.Printf("ratio vs raw:  %.2fx\n", 64/bpa)
		}
	}
	st := d.Store()
	names, err := st.List()
	if err != nil {
		fmt.Fprintln(os.Stderr, "atcinfo:", err)
		os.Exit(1)
	}
	fmt.Println("blobs:")
	for _, name := range names {
		b, err := st.Open(name)
		if err != nil {
			continue
		}
		fmt.Printf("  %-16s %12d bytes\n", name, b.Size())
		b.Close()
	}
	if *chunks {
		printChunkIndex(d)
	}
}

// printChunkIndex lists the decoder's chunk index: one line per record
// with its address range, backing chunk blob (shared by imitations) and
// the blob's compressed size.
func printChunkIndex(d *core.Decompressor) {
	fmt.Println("chunk index:")
	fmt.Printf("  %-6s %-26s %-9s %-10s %s\n", "#", "[start, end)", "chunk", "kind", "compressed")
	st := d.Store()
	for i, sp := range d.ChunkIndex() {
		kind := "chunk"
		if sp.Imitation {
			kind = "imitation"
		}
		size := "-"
		if b, err := st.Open(d.ChunkBlobName(sp.ChunkID)); err == nil {
			size = fmt.Sprintf("%d bytes", b.Size())
			b.Close()
		}
		fmt.Printf("  %-6d [%d, %d)%*s %-9d %-10s %s\n",
			i, sp.Start, sp.End, max(0, 24-len(fmt.Sprintf("[%d, %d)", sp.Start, sp.End))), "",
			sp.ChunkID, kind, size)
	}
}
