// Command benchguard compares a `go test -bench` output against a
// checked-in baseline and fails when a guarded benchmark's ns/op
// regresses beyond a threshold. It is the regression gate behind the
// bench-smoke CI job: benchstat shows the drift, benchguard draws the
// line.
//
// Usage:
//
//	benchguard -baseline ci/bench-baseline.txt current.txt
//
// Both files are plain `go test -bench` output (benchstat-compatible).
// Only benchmarks present in the baseline are guarded — new benchmarks
// pass until a baseline entry is added. GOMAXPROCS name suffixes
// ("-2" from -cpu 1,2) are stripped, and when a benchmark appears more
// than once on either side the best (lowest) ns/op wins, so one noisy
// sample or an extra -cpu variant cannot fail the gate on its own.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one benchmark result line:
//
//	BenchmarkName[-4]  <iters>  <value> ns/op  [...]
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([0-9.]+)\s+ns/op`)

// parseBench reads go-bench output and returns the best ns/op per
// benchmark name (GOMAXPROCS suffix stripped).
func parseBench(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	best := make(map[string]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil || ns <= 0 {
			continue
		}
		if prev, ok := best[m[1]]; !ok || ns < prev {
			best[m[1]] = ns
		}
	}
	return best, sc.Err()
}

func run(baselinePath, currentPath string, threshold float64, out *strings.Builder) (failed int, err error) {
	baseline, err := parseBench(baselinePath)
	if err != nil {
		return 0, fmt.Errorf("baseline: %w", err)
	}
	if len(baseline) == 0 {
		return 0, fmt.Errorf("baseline %s contains no benchmark lines", baselinePath)
	}
	current, err := parseBench(currentPath)
	if err != nil {
		return 0, fmt.Errorf("current: %w", err)
	}
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			// A guarded benchmark that no longer runs is a silent gate
			// removal, not a pass.
			fmt.Fprintf(out, "FAIL %-44s baseline %12.0f ns/op: missing from current run\n", name, base)
			failed++
			continue
		}
		ratio := cur / base
		status := "ok  "
		if ratio > threshold {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(out, "%s %-44s %12.0f -> %12.0f ns/op  (%+.1f%%)\n",
			status, name, base, cur, (ratio-1)*100)
	}
	return failed, nil
}

func main() {
	baselinePath := flag.String("baseline", "", "baseline go-bench output (required)")
	threshold := flag.Float64("threshold", 1.10, "max allowed current/baseline ns/op ratio")
	flag.Parse()
	if *baselinePath == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchguard -baseline <baseline.txt> [-threshold 1.10] <current.txt>")
		os.Exit(2)
	}
	var out strings.Builder
	failed, err := run(*baselinePath, flag.Arg(0), *threshold, &out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	os.Stdout.WriteString(out.String())
	if failed > 0 {
		fmt.Printf("benchguard: %d benchmark(s) regressed beyond %.0f%%\n", failed, (*threshold-1)*100)
		os.Exit(1)
	}
	fmt.Println("benchguard: all guarded benchmarks within threshold")
}
