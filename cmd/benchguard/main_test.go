package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseline = `# provenance comment
goos: linux
BenchmarkMatchPruned256      	     100	     10000 ns/op	       0 B/op
BenchmarkEncodeFrontendWorkers1 	       3	 300000000 ns/op
`

func TestWithinThresholdPasses(t *testing.T) {
	base := writeFile(t, "base.txt", baseline)
	cur := writeFile(t, "cur.txt", `
BenchmarkMatchPruned256      	     100	     10500 ns/op
BenchmarkMatchPruned256-2    	     100	     10900 ns/op
BenchmarkEncodeFrontendWorkers1 	       3	 290000000 ns/op
BenchmarkUnguardedNew        	       3	 999999999 ns/op
`)
	var out strings.Builder
	failed, err := run(base, cur, 1.10, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Fatalf("failed = %d, want 0\n%s", failed, out.String())
	}
}

func TestRegressionFails(t *testing.T) {
	base := writeFile(t, "base.txt", baseline)
	cur := writeFile(t, "cur.txt", `
BenchmarkMatchPruned256      	     100	     11500 ns/op
BenchmarkEncodeFrontendWorkers1 	       3	 300000000 ns/op
`)
	var out strings.Builder
	failed, err := run(base, cur, 1.10, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 1 {
		t.Fatalf("failed = %d, want 1\n%s", failed, out.String())
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkMatchPruned256") {
		t.Fatalf("missing FAIL line:\n%s", out.String())
	}
}

func TestBestOfMultipleSamplesDampsNoise(t *testing.T) {
	base := writeFile(t, "base.txt", baseline)
	// One noisy sample beyond threshold, but the -cpu 2 variant of the
	// same benchmark is fine: best-of passes.
	cur := writeFile(t, "cur.txt", `
BenchmarkMatchPruned256      	     100	     19000 ns/op
BenchmarkMatchPruned256-2    	     100	     10100 ns/op
BenchmarkEncodeFrontendWorkers1 	       3	 300000000 ns/op
`)
	var out strings.Builder
	failed, err := run(base, cur, 1.10, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Fatalf("failed = %d, want 0\n%s", failed, out.String())
	}
}

func TestMissingGuardedBenchmarkFails(t *testing.T) {
	base := writeFile(t, "base.txt", baseline)
	cur := writeFile(t, "cur.txt", `
BenchmarkMatchPruned256      	     100	     10000 ns/op
`)
	var out strings.Builder
	failed, err := run(base, cur, 1.10, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 1 {
		t.Fatalf("failed = %d, want 1 (missing guarded benchmark)\n%s", failed, out.String())
	}
}

func TestEmptyBaselineErrors(t *testing.T) {
	base := writeFile(t, "base.txt", "goos: linux\n")
	cur := writeFile(t, "cur.txt", baseline)
	var out strings.Builder
	if _, err := run(base, cur, 1.10, &out); err == nil {
		t.Fatal("empty baseline accepted")
	}
}
