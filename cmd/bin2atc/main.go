// Command bin2atc compresses a raw trace of 64-bit little-endian values
// from standard input into an ATC trace — a directory, or a single-file
// .atc archive with -archive — mirroring the example program of the
// paper's Figure 6.
//
// Usage:
//
//	tracegen -model 429.mcf -n 1000000 | bin2atc [flags] <directory>
//	tracegen -model 429.mcf -n 1000000 | bin2atc -archive [flags] <file.atc>
//
// The default mode is lossy ('k' in the paper); pass -lossless for the
// paper's 'c' mode.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"atc"
	"atc/internal/trace"
)

func main() {
	lossless := flag.Bool("lossless", false, "use lossless mode (paper mode 'c'; default is lossy 'k')")
	backend := flag.String("backend", "bsc", "byte-level back end: bsc, flate, store")
	intervalLen := flag.Int("interval", 0, "lossy interval length L in addresses (default 10,000,000)")
	bufAddrs := flag.Int("buffer", 0, "bytesort buffer B in addresses (default 1,000,000)")
	segment := flag.Int("segment", 0, "lossless segment length in addresses (default 16Mi; -1 = legacy single chunk)")
	epsilon := flag.Float64("epsilon", 0, "lossy matching threshold (default 0.1)")
	workers := flag.Int("workers", 0, "chunk-compression workers (default GOMAXPROCS; 1 = synchronous)")
	archive := flag.Bool("archive", false, "write a single-file .atc archive instead of a directory")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bin2atc [flags] <directory | -archive file.atc>\nreads 64-bit LE values from stdin\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	dir := flag.Arg(0)

	opts := []atc.Option{atc.WithBackend(*backend)}
	if *lossless {
		opts = append(opts, atc.WithMode(atc.Lossless))
	} else {
		opts = append(opts, atc.WithMode(atc.Lossy))
	}
	if *intervalLen > 0 {
		opts = append(opts, atc.WithIntervalLen(*intervalLen))
	}
	if *bufAddrs > 0 {
		opts = append(opts, atc.WithBufferAddrs(*bufAddrs))
	}
	if *segment != 0 {
		opts = append(opts, atc.WithSegmentAddrs(*segment))
	}
	if *epsilon > 0 {
		opts = append(opts, atc.WithEpsilon(*epsilon))
	}
	if *workers > 0 {
		opts = append(opts, atc.WithWorkers(*workers))
	}

	newWriter := atc.NewWriter
	if *archive {
		newWriter = atc.CreateArchive
	}
	w, err := newWriter(dir, opts...)
	if err != nil {
		fatal(err)
	}
	r := trace.NewReader(os.Stdin)
	for {
		x, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(fmt.Errorf("reading stdin: %w", err))
		}
		if err := w.Code(x); err != nil {
			fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		fatal(err)
	}
	s := w.Stats()
	fmt.Fprintf(os.Stderr, "bin2atc: %d addresses, %d chunks, %d imitations -> %s\n",
		s.TotalAddrs, s.Chunks, s.Imitations, dir)
	if bpa, err := atc.BitsPerAddress(dir, s.TotalAddrs); err == nil && s.TotalAddrs > 0 {
		fmt.Fprintf(os.Stderr, "bin2atc: %.3f bits per address\n", bpa)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bin2atc:", err)
	os.Exit(1)
}
