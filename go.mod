module atc

go 1.24.0
